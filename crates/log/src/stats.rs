//! Descriptive statistics over a log, used for reporting and by the
//! cost-based optimizer (activity selectivities).

use std::collections::BTreeMap;
use std::fmt;

use crate::log::Log;
use crate::names::Activity;

/// Summary statistics of a [`Log`].
///
/// ```
/// use wlq_log::{paper, LogStats};
///
/// let stats = LogStats::compute(&paper::figure3_log());
/// assert_eq!(stats.num_records, 20);
/// assert_eq!(stats.num_instances, 3);
/// assert_eq!(stats.activity_count("SeeDoctor"), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LogStats {
    /// Total number of records, `|L|`.
    pub num_records: usize,
    /// Number of distinct workflow instances.
    pub num_instances: usize,
    /// Number of instances closed by an `END` record.
    pub completed_instances: usize,
    /// Executions per activity name (including `START`/`END`).
    pub activity_counts: BTreeMap<Activity, usize>,
    /// Length of the shortest instance.
    pub min_instance_len: usize,
    /// Length of the longest instance.
    pub max_instance_len: usize,
}

impl LogStats {
    /// Computes statistics in one pass.
    #[must_use]
    pub fn compute(log: &Log) -> Self {
        let mut activity_counts: BTreeMap<Activity, usize> = BTreeMap::new();
        for r in log.iter() {
            *activity_counts.entry(r.activity().clone()).or_insert(0) += 1;
        }
        let mut min_len = usize::MAX;
        let mut max_len = 0;
        let mut completed = 0;
        for wid in log.wids() {
            let len = log.instance_len(wid);
            min_len = min_len.min(len);
            max_len = max_len.max(len);
            if log.is_completed(wid) {
                completed += 1;
            }
        }
        LogStats {
            num_records: log.len(),
            num_instances: log.num_instances(),
            completed_instances: completed,
            activity_counts,
            min_instance_len: if min_len == usize::MAX { 0 } else { min_len },
            max_instance_len: max_len,
        }
    }

    /// Executions of `activity`, 0 if it never ran.
    #[must_use]
    pub fn activity_count(&self, activity: &str) -> usize {
        self.activity_counts.get(activity).copied().unwrap_or(0)
    }

    /// The fraction of records carrying `activity` — the selectivity
    /// statistic driving join-order choices in the optimizer.
    #[must_use]
    pub fn selectivity(&self, activity: &str) -> f64 {
        if self.num_records == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.activity_count(activity) as f64 / self.num_records as f64
        }
    }

    /// Mean records per instance.
    #[must_use]
    pub fn mean_instance_len(&self) -> f64 {
        if self.num_instances == 0 {
            return 0.0;
        }
        #[allow(clippy::cast_precision_loss)]
        {
            self.num_records as f64 / self.num_instances as f64
        }
    }
}

impl fmt::Display for LogStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "records: {}, instances: {} ({} completed), instance length: {}..{} (mean {:.1})",
            self.num_records,
            self.num_instances,
            self.completed_instances,
            self.min_instance_len,
            self.max_instance_len,
            self.mean_instance_len(),
        )?;
        for (act, n) in &self.activity_counts {
            writeln!(f, "  {act}: {n}")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    #[test]
    fn figure3_statistics() {
        let stats = LogStats::compute(&paper::figure3_log());
        assert_eq!(stats.num_records, 20);
        assert_eq!(stats.num_instances, 3);
        assert_eq!(stats.completed_instances, 0);
        assert_eq!(stats.activity_count("START"), 3);
        assert_eq!(stats.activity_count("SeeDoctor"), 4);
        assert_eq!(stats.activity_count("PayTreatment"), 3);
        assert_eq!(stats.activity_count("UpdateRefer"), 1);
        assert_eq!(stats.activity_count("Missing"), 0);
        assert_eq!(stats.min_instance_len, 2);
        assert_eq!(stats.max_instance_len, 9);
    }

    #[test]
    fn selectivity_and_mean_length() {
        let stats = LogStats::compute(&paper::figure3_log());
        let sel = stats.selectivity("SeeDoctor");
        assert!((sel - 0.2).abs() < 1e-12);
        assert!((stats.mean_instance_len() - 20.0 / 3.0).abs() < 1e-12);
        assert_eq!(stats.selectivity("Missing"), 0.0);
    }

    #[test]
    fn display_lists_every_activity() {
        let stats = LogStats::compute(&paper::figure3_log());
        let text = stats.to_string();
        assert!(text.contains("records: 20"));
        assert!(text.contains("SeeDoctor: 4"));
        assert!(text.contains("UpdateRefer: 1"));
    }
}
