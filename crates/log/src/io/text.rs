//! The pipe-separated text format of Figure 3.
//!
//! One record per line, six `|`-separated fields:
//!
//! ```text
//! lsn | wid | is-lsn | activity | αin | αout
//! 4 | 1 | 3 | CheckIn | balance=1000, referId=034d1 | referState=active
//! ```
//!
//! Attribute maps are comma-separated `name=value` pairs, or `-` when
//! empty. A leading header line (starting with `lsn`) is written by
//! [`write_text`] and skipped by [`read_text`]. Attribute names must not
//! contain `=`, `,`, or `|`; values must not contain `,` or `|` (the
//! formats in this crate target the paper's value universe, not arbitrary
//! binary data — use [`crate::io::binary`] for that).

use crate::attrs::AttrMap;
use crate::error::ParseLogError;
use crate::log::Log;
use crate::record::LogRecord;

/// Renders a log as a Figure 3-style table with a header line.
///
/// Unlike [`LogRecord`]'s human-oriented `Display`, this renderer quotes
/// attribute values that would otherwise be ambiguous (numeric-looking
/// strings, separators), so [`read_text`] round-trips losslessly.
#[must_use]
pub fn write_text(log: &Log) -> String {
    let mut out = String::from("lsn | wid | is-lsn | t | in | out\n");
    for r in log.iter() {
        let render = |m: &AttrMap| {
            if m.is_empty() {
                "-".to_string()
            } else {
                super::render_map(m, ", ")
            }
        };
        out.push_str(&format!(
            "{} | {} | {} | {} | {} | {}\n",
            r.lsn(),
            r.wid(),
            r.is_lsn(),
            r.activity(),
            render(r.input()),
            render(r.output()),
        ));
    }
    out
}

/// Parses a log from the text format.
///
/// # Errors
///
/// Returns [`ParseLogError`] if a line is malformed or the records do not
/// form a valid log (Definition 2).
pub fn read_text(text: &str) -> Result<Log, ParseLogError> {
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') || trimmed.starts_with("lsn") {
            continue;
        }
        records.push(parse_line(trimmed, line_no)?);
    }
    Ok(Log::new(records)?)
}

fn parse_line(line: &str, line_no: usize) -> Result<LogRecord, ParseLogError> {
    // Quote-aware split: a '|' inside a quoted attribute value is data.
    let fields: Vec<String> = super::split_entries(line, '|')
        .into_iter()
        .map(|f| f.trim().to_string())
        .collect();
    if fields.len() != 6 {
        return Err(ParseLogError::BadShape {
            line: line_no,
            message: format!("expected 6 '|'-separated fields, found {}", fields.len()),
        });
    }
    let lsn: u64 = fields[0].parse().map_err(|_| ParseLogError::BadNumber {
        line: line_no,
        field: "lsn",
        text: fields[0].clone(),
    })?;
    let wid: u64 = fields[1].parse().map_err(|_| ParseLogError::BadNumber {
        line: line_no,
        field: "wid",
        text: fields[1].clone(),
    })?;
    let is_lsn: u32 = fields[2].parse().map_err(|_| ParseLogError::BadNumber {
        line: line_no,
        field: "is-lsn",
        text: fields[2].clone(),
    })?;
    if fields[3].is_empty() {
        return Err(ParseLogError::BadShape {
            line: line_no,
            message: "activity name is empty".to_string(),
        });
    }
    let input = parse_attr_map(&fields[4], line_no)?;
    let output = parse_attr_map(&fields[5], line_no)?;
    Ok(LogRecord::new(
        lsn,
        wid,
        is_lsn,
        fields[3].as_str(),
        input,
        output,
    ))
}

pub(crate) fn parse_attr_map(text: &str, line_no: usize) -> Result<AttrMap, ParseLogError> {
    let mut map = AttrMap::new();
    let trimmed = text.trim();
    if trimmed.is_empty() || trimmed == "-" {
        return Ok(map);
    }
    for pair in super::split_entries(trimmed, ',') {
        let pair = pair.trim();
        let Some((name, value)) = pair.split_once('=') else {
            return Err(ParseLogError::BadShape {
                line: line_no,
                message: format!("attribute entry {pair:?} is not name=value"),
            });
        };
        let name = name.trim();
        if name.is_empty() {
            return Err(ParseLogError::BadShape {
                line: line_no,
                message: "attribute name is empty".to_string(),
            });
        }
        map.set(name, super::parse_rendered_value(value));
    }
    Ok(map)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;
    use crate::record::{Lsn, Wid};
    use crate::Value;

    #[test]
    fn figure3_round_trips() {
        let log = paper::figure3_log();
        let text = write_text(&log);
        let back = read_text(&text).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn header_comments_and_blank_lines_are_skipped() {
        let text = "\
lsn | wid | is-lsn | t | in | out
# a comment

1 | 1 | 1 | START | - | -
2 | 1 | 2 | A | x=1 | y=2
";
        let log = read_text(text).unwrap();
        assert_eq!(log.len(), 2);
        assert_eq!(
            log.get(Lsn(2)).unwrap().input().get_or_undefined("x"),
            Value::Int(1)
        );
    }

    #[test]
    fn wrong_field_count_is_reported_with_line_number() {
        let err = read_text("1 | 1 | 1 | START | -").unwrap_err();
        assert!(matches!(err, ParseLogError::BadShape { line: 1, .. }));
    }

    #[test]
    fn bad_numbers_name_the_field() {
        let err = read_text("x | 1 | 1 | START | - | -").unwrap_err();
        assert!(matches!(err, ParseLogError::BadNumber { field: "lsn", .. }));
        let err = read_text("1 | y | 1 | START | - | -").unwrap_err();
        assert!(matches!(err, ParseLogError::BadNumber { field: "wid", .. }));
        let err = read_text("1 | 1 | z | START | - | -").unwrap_err();
        assert!(matches!(
            err,
            ParseLogError::BadNumber {
                field: "is-lsn",
                ..
            }
        ));
    }

    #[test]
    fn malformed_attribute_pairs_are_rejected() {
        let err = read_text("1 | 1 | 1 | START | novalue | -").unwrap_err();
        assert!(matches!(err, ParseLogError::BadShape { .. }));
        let err = read_text("1 | 1 | 1 | START | =1 | -").unwrap_err();
        assert!(matches!(err, ParseLogError::BadShape { .. }));
    }

    #[test]
    fn empty_activity_is_rejected() {
        let err = read_text("1 | 1 | 1 |  | - | -").unwrap_err();
        assert!(matches!(err, ParseLogError::BadShape { .. }));
    }

    #[test]
    fn invalid_log_structure_is_reported() {
        // Valid lines but is-lsn 1 is not START.
        let err = read_text("1 | 1 | 1 | A | - | -").unwrap_err();
        assert!(matches!(err, ParseLogError::Invalid(_)));
    }

    #[test]
    fn values_with_spaces_survive() {
        let text = "1 | 1 | 1 | START | - | -\n2 | 1 | 2 | A | - | hospital=Public Hospital";
        let log = read_text(text).unwrap();
        assert_eq!(
            log.record(Wid(1), 2u32.into())
                .unwrap()
                .output()
                .get_or_undefined("hospital"),
            Value::from("Public Hospital")
        );
    }
}
