//! Compact binary log encoding built on [`bytes`].
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic  "WLQ1"          4 bytes
//! count  u64             number of records
//! record*:
//!   lsn    u64
//!   wid    u64
//!   is_lsn u32
//!   act    str           (u32 length + UTF-8 bytes)
//!   input  map           (u32 count, then per entry: str name, value)
//!   output map
//! value: 1 tag byte then payload
//!   0 = undefined, 1 = bool (u8), 2 = int (i64), 3 = float (f64 bits),
//!   4 = str
//! ```

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::attrs::AttrMap;
use crate::error::ParseLogError;
use crate::log::Log;
use crate::record::LogRecord;
use crate::Value;

const MAGIC: &[u8; 4] = b"WLQ1";

/// Encodes a log into the binary format.
#[must_use]
pub fn write_binary(log: &Log) -> Bytes {
    let mut buf = BytesMut::with_capacity(64 * log.len());
    buf.put_slice(MAGIC);
    buf.put_u64_le(log.len() as u64);
    for r in log.iter() {
        buf.put_u64_le(r.lsn().get());
        buf.put_u64_le(r.wid().get());
        buf.put_u32_le(r.is_lsn().get());
        put_str(&mut buf, r.activity().as_str());
        put_map(&mut buf, r.input());
        put_map(&mut buf, r.output());
    }
    buf.freeze()
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn put_map(buf: &mut BytesMut, map: &AttrMap) {
    buf.put_u32_le(map.len() as u32);
    for (k, v) in map.iter() {
        put_str(buf, k.as_str());
        put_value(buf, v);
    }
}

fn put_value(buf: &mut BytesMut, v: &Value) {
    match v {
        Value::Undefined => buf.put_u8(0),
        Value::Bool(b) => {
            buf.put_u8(1);
            buf.put_u8(u8::from(*b));
        }
        Value::Int(i) => {
            buf.put_u8(2);
            buf.put_i64_le(*i);
        }
        Value::Float(x) => {
            buf.put_u8(3);
            buf.put_u64_le(x.to_bits());
        }
        Value::Str(s) => {
            buf.put_u8(4);
            put_str(buf, s);
        }
    }
}

/// Decodes a log from the binary format.
///
/// # Errors
///
/// Returns [`ParseLogError::BadShape`] on truncated or corrupt input and
/// [`ParseLogError::Invalid`] if the decoded records violate Definition 2.
pub fn read_binary(mut data: Bytes) -> Result<Log, ParseLogError> {
    fn bad(message: impl Into<String>) -> ParseLogError {
        ParseLogError::BadShape {
            line: 0,
            message: message.into(),
        }
    }
    if data.remaining() < 12 {
        return Err(bad("input shorter than header"));
    }
    let mut magic = [0u8; 4];
    data.copy_to_slice(&mut magic);
    if &magic != MAGIC {
        return Err(bad("bad magic, not a WLQ1 binary log"));
    }
    let count = data.get_u64_le();
    let mut records = Vec::with_capacity(count.min(1 << 20) as usize);
    for i in 0..count {
        let err = || bad(format!("truncated record {i}"));
        if data.remaining() < 20 {
            return Err(err());
        }
        let lsn = data.get_u64_le();
        let wid = data.get_u64_le();
        let is_lsn = data.get_u32_le();
        let act = get_str(&mut data).ok_or_else(err)?;
        let input = get_map(&mut data).ok_or_else(err)?;
        let output = get_map(&mut data).ok_or_else(err)?;
        records.push(LogRecord::new(
            lsn,
            wid,
            is_lsn,
            act.as_str(),
            input,
            output,
        ));
    }
    if data.has_remaining() {
        return Err(bad("trailing bytes after last record"));
    }
    Ok(Log::new(records)?)
}

fn get_str(data: &mut Bytes) -> Option<String> {
    if data.remaining() < 4 {
        return None;
    }
    let len = data.get_u32_le() as usize;
    if data.remaining() < len {
        return None;
    }
    let raw = data.copy_to_bytes(len);
    String::from_utf8(raw.to_vec()).ok()
}

fn get_map(data: &mut Bytes) -> Option<AttrMap> {
    if data.remaining() < 4 {
        return None;
    }
    let count = data.get_u32_le();
    let mut map = AttrMap::new();
    for _ in 0..count {
        let name = get_str(data)?;
        let value = get_value(data)?;
        map.set(name, value);
    }
    Some(map)
}

fn get_value(data: &mut Bytes) -> Option<Value> {
    if !data.has_remaining() {
        return None;
    }
    match data.get_u8() {
        0 => Some(Value::Undefined),
        1 => {
            if !data.has_remaining() {
                return None;
            }
            Some(Value::Bool(data.get_u8() != 0))
        }
        2 => {
            if data.remaining() < 8 {
                return None;
            }
            Some(Value::Int(data.get_i64_le()))
        }
        3 => {
            if data.remaining() < 8 {
                return None;
            }
            Some(Value::Float(f64::from_bits(data.get_u64_le())))
        }
        4 => get_str(data).map(Value::from),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    #[test]
    fn figure3_round_trips_through_binary() {
        let log = paper::figure3_log();
        let bytes = write_binary(&log);
        let back = read_binary(bytes).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let err = read_binary(Bytes::from_static(b"NOPE00000000")).unwrap_err();
        assert!(err.to_string().contains("magic"));
    }

    #[test]
    fn truncated_input_is_rejected() {
        let log = paper::figure3_log();
        let bytes = write_binary(&log);
        let truncated = bytes.slice(0..bytes.len() - 3);
        assert!(read_binary(truncated).is_err());
    }

    #[test]
    fn trailing_garbage_is_rejected() {
        let log = paper::figure3_log();
        let mut raw = write_binary(&log).to_vec();
        raw.push(0xFF);
        assert!(read_binary(Bytes::from(raw)).is_err());
    }

    #[test]
    fn empty_input_is_rejected() {
        assert!(read_binary(Bytes::new()).is_err());
    }

    #[test]
    fn all_value_kinds_round_trip() {
        let mut b = crate::LogBuilder::new();
        let w = b.start_instance();
        b.append(
            w,
            "A",
            crate::attrs! {
                "u" => crate::Value::Undefined,
                "b" => true,
                "i" => -9i64,
                "f" => 2.5f64,
                "s" => "text",
            },
            crate::AttrMap::new(),
        )
        .unwrap();
        let log = b.build().unwrap();
        let back = read_binary(write_binary(&log)).unwrap();
        assert_eq!(back, log);
    }
}
