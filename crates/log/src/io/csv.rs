//! CSV serialization of logs.
//!
//! Six columns: `lsn,wid,is_lsn,activity,input,output`. The attribute-map
//! columns hold `name=value` pairs separated by `;` and are quoted when
//! they contain commas, quotes, or newlines (RFC 4180-style doubling of
//! quotes). A small hand-rolled CSV reader/writer keeps the crate free of
//! external parsing dependencies.

use crate::attrs::AttrMap;
use crate::error::ParseLogError;
use crate::log::Log;
use crate::record::LogRecord;

/// Renders a log as CSV with a header row.
#[must_use]
pub fn write_csv(log: &Log) -> String {
    let mut out = String::from("lsn,wid,is_lsn,activity,input,output\n");
    for r in log.iter() {
        out.push_str(&r.lsn().to_string());
        out.push(',');
        out.push_str(&r.wid().to_string());
        out.push(',');
        out.push_str(&r.is_lsn().to_string());
        out.push(',');
        push_field(&mut out, r.activity().as_str());
        out.push(',');
        push_field(&mut out, &attr_map_field(r.input()));
        out.push(',');
        push_field(&mut out, &attr_map_field(r.output()));
        out.push('\n');
    }
    out
}

fn attr_map_field(map: &AttrMap) -> String {
    super::render_map(map, ";")
}

fn push_field(out: &mut String, field: &str) {
    if field.contains(',') || field.contains('"') || field.contains('\n') {
        out.push('"');
        for c in field.chars() {
            if c == '"' {
                out.push('"');
            }
            out.push(c);
        }
        out.push('"');
    } else {
        out.push_str(field);
    }
}

/// Parses a log from CSV produced by [`write_csv`] (or compatible).
///
/// # Errors
///
/// Returns [`ParseLogError`] on malformed rows or an invalid log.
pub fn read_csv(text: &str) -> Result<Log, ParseLogError> {
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        let line_no = i + 1;
        if line.trim().is_empty() || (line_no == 1 && line.starts_with("lsn")) {
            continue;
        }
        let fields = split_csv_line(line, line_no)?;
        if fields.len() != 6 {
            return Err(ParseLogError::BadShape {
                line: line_no,
                message: format!("expected 6 columns, found {}", fields.len()),
            });
        }
        let lsn: u64 = fields[0].parse().map_err(|_| ParseLogError::BadNumber {
            line: line_no,
            field: "lsn",
            text: fields[0].clone(),
        })?;
        let wid: u64 = fields[1].parse().map_err(|_| ParseLogError::BadNumber {
            line: line_no,
            field: "wid",
            text: fields[1].clone(),
        })?;
        let is_lsn: u32 = fields[2].parse().map_err(|_| ParseLogError::BadNumber {
            line: line_no,
            field: "is-lsn",
            text: fields[2].clone(),
        })?;
        if fields[3].is_empty() {
            return Err(ParseLogError::BadShape {
                line: line_no,
                message: "activity name is empty".to_string(),
            });
        }
        let input = parse_semi_map(&fields[4], line_no)?;
        let output = parse_semi_map(&fields[5], line_no)?;
        records.push(LogRecord::new(
            lsn,
            wid,
            is_lsn,
            fields[3].as_str(),
            input,
            output,
        ));
    }
    Ok(Log::new(records)?)
}

fn parse_semi_map(text: &str, line_no: usize) -> Result<AttrMap, ParseLogError> {
    let mut map = AttrMap::new();
    if text.trim().is_empty() {
        return Ok(map);
    }
    for pair in super::split_entries(text, ';') {
        let Some((name, value)) = pair.split_once('=') else {
            return Err(ParseLogError::BadShape {
                line: line_no,
                message: format!("attribute entry {pair:?} is not name=value"),
            });
        };
        let name = name.trim();
        if name.is_empty() {
            return Err(ParseLogError::BadShape {
                line: line_no,
                message: "attribute name is empty".to_string(),
            });
        }
        map.set(name, super::parse_rendered_value(value));
    }
    Ok(map)
}

fn split_csv_line(line: &str, line_no: usize) -> Result<Vec<String>, ParseLogError> {
    let mut fields = Vec::new();
    let mut cur = String::new();
    let mut chars = line.chars().peekable();
    let mut in_quotes = false;
    while let Some(c) = chars.next() {
        if in_quotes {
            if c == '"' {
                if chars.peek() == Some(&'"') {
                    cur.push('"');
                    chars.next();
                } else {
                    in_quotes = false;
                }
            } else {
                cur.push(c);
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => fields.push(std::mem::take(&mut cur)),
                _ => cur.push(c),
            }
        }
    }
    if in_quotes {
        return Err(ParseLogError::BadShape {
            line: line_no,
            message: "unterminated quoted field".to_string(),
        });
    }
    fields.push(cur);
    Ok(fields)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;
    use crate::record::Lsn;

    #[test]
    fn figure3_round_trips_through_csv() {
        let log = paper::figure3_log();
        let csv = write_csv(&log);
        let back = read_csv(&csv).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn header_is_emitted_once_and_skipped_on_read() {
        let log = paper::figure3_log();
        let csv = write_csv(&log);
        assert!(csv.starts_with("lsn,wid,is_lsn,activity,input,output\n"));
        assert_eq!(csv.lines().count(), 21);
    }

    #[test]
    fn quoted_fields_handle_commas_and_quotes() {
        let fields = split_csv_line(r#"1,"a,b","say ""hi""",c"#, 1).unwrap();
        assert_eq!(fields, vec!["1", "a,b", "say \"hi\"", "c"]);
    }

    #[test]
    fn unterminated_quote_is_an_error() {
        assert!(split_csv_line(r#"1,"oops"#, 3).is_err());
    }

    #[test]
    fn wrong_column_count_is_rejected() {
        let err = read_csv("1,1,1,START,").unwrap_err();
        assert!(matches!(err, ParseLogError::BadShape { .. }));
    }

    #[test]
    fn values_containing_commas_survive() {
        // An attribute value with a comma forces quoting of the map column.
        let mut b = crate::LogBuilder::new();
        let w = b.start_instance();
        b.append(
            w,
            "A",
            crate::attrs! { "note" => "x, y" },
            crate::AttrMap::new(),
        )
        .unwrap();
        let log = b.build().unwrap();
        let back = read_csv(&write_csv(&log)).unwrap();
        assert_eq!(
            back.get(Lsn(2)).unwrap().input().get_or_undefined("note"),
            crate::Value::from("x, y")
        );
    }

    #[test]
    fn bad_attribute_pair_is_rejected() {
        let err = read_csv("1,1,1,START,broken,").unwrap_err();
        assert!(matches!(err, ParseLogError::BadShape { .. }));
    }
}
