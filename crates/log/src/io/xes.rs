//! XES export/import (a pragmatic subset).
//!
//! [XES](https://xes-standard.org/) is the IEEE interchange format for
//! process-mining event logs (ProM, pm4py, Disco all speak it). This
//! module writes a WLQ log as XES — one `<trace>` per workflow instance,
//! one `<event>` per record — and reads back the same subset, so WLQ logs
//! can round-trip into the wider process-mining ecosystem.
//!
//! Mapping:
//!
//! * trace attribute `concept:name` ← the instance's `wid`,
//! * event attribute `concept:name` ← the activity name,
//! * event attribute `wlq:islsn` ← the record's `is-lsn`,
//! * record αin/αout entries become `wlq:in:<name>` / `wlq:out:<name>`
//!   string/int/float/boolean attributes.
//!
//! `START`/`END` records are exported like any other event so the
//! round-trip is exact. The reader is a small recursive-descent XML
//! parser restricted to the subset this writer emits (plus arbitrary
//! whitespace); it is not a general XML parser.

use std::fmt::Write as _;

use crate::error::ParseLogError;
use crate::log::Log;
use crate::record::{LogRecord, Wid};
use crate::{AttrMap, Value};

/// Serializes a log as an XES document.
#[must_use]
pub fn write_xes(log: &Log) -> String {
    let mut out = String::new();
    out.push_str("<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n");
    out.push_str("<log xes.version=\"1.0\" xmlns=\"http://www.xes-standard.org/\">\n");
    for wid in log.wids() {
        let _ = writeln!(out, "  <trace>");
        let _ = writeln!(
            out,
            "    <string key=\"concept:name\" value=\"{}\"/>",
            wid.get()
        );
        for record in log.instance(wid) {
            let _ = writeln!(out, "    <event>");
            let _ = writeln!(
                out,
                "      <string key=\"concept:name\" value=\"{}\"/>",
                escape(record.activity().as_str())
            );
            let _ = writeln!(
                out,
                "      <int key=\"wlq:islsn\" value=\"{}\"/>",
                record.is_lsn().get()
            );
            let _ = writeln!(
                out,
                "      <int key=\"wlq:lsn\" value=\"{}\"/>",
                record.lsn().get()
            );
            write_map(&mut out, "wlq:in:", record.input());
            write_map(&mut out, "wlq:out:", record.output());
            let _ = writeln!(out, "    </event>");
        }
        let _ = writeln!(out, "  </trace>");
    }
    out.push_str("</log>\n");
    out
}

fn write_map(out: &mut String, prefix: &str, map: &AttrMap) {
    for (name, value) in map.iter() {
        let key = format!("{prefix}{}", escape(name.as_str()));
        let line = match value {
            Value::Undefined => format!("<string key=\"{key}\" value=\"⊥\"/>"),
            Value::Bool(b) => format!("<boolean key=\"{key}\" value=\"{b}\"/>"),
            Value::Int(i) => format!("<int key=\"{key}\" value=\"{i}\"/>"),
            Value::Float(x) => {
                // `{x}` prints both NaN signs as "NaN"; keep the sign so
                // bit-level equality (total_cmp) survives the round trip.
                let rendered = if x.is_nan() && x.is_sign_negative() {
                    "-NaN".to_string()
                } else {
                    format!("{x}")
                };
                format!("<float key=\"{key}\" value=\"{rendered}\"/>")
            }
            Value::Str(s) => format!("<string key=\"{key}\" value=\"{}\"/>", escape(s)),
        };
        let _ = writeln!(out, "      {line}");
    }
}

fn escape(s: &str) -> String {
    s.replace('&', "&amp;")
        .replace('<', "&lt;")
        .replace('>', "&gt;")
        .replace('"', "&quot;")
}

fn unescape(s: &str) -> String {
    s.replace("&quot;", "\"")
        .replace("&gt;", ">")
        .replace("&lt;", "<")
        .replace("&amp;", "&")
}

/// Parses a log from the XES subset emitted by [`write_xes`].
///
/// # Errors
///
/// Returns [`ParseLogError`] for malformed documents, missing mandatory
/// keys, or record sets violating Definition 2.
pub fn read_xes(text: &str) -> Result<Log, ParseLogError> {
    let mut records: Vec<LogRecord> = Vec::new();
    let mut parser = XmlScanner::new(text);
    let mut current_wid: Option<Wid> = None;
    let mut event: Option<EventBuilder> = None;

    while let Some(tag) = parser.next_tag()? {
        match tag.name.as_str() {
            "trace" if !tag.closing => current_wid = None,
            "event" if !tag.closing => event = Some(EventBuilder::default()),
            "event" if tag.closing => {
                let builder = event
                    .take()
                    .ok_or_else(|| bad(parser.line, "</event> without <event>"))?;
                let wid = current_wid
                    .ok_or_else(|| bad(parser.line, "event before trace concept:name"))?;
                records.push(builder.finish(wid, parser.line)?);
            }
            "string" | "int" | "float" | "boolean" => {
                let key = tag
                    .attr("key")
                    .ok_or_else(|| bad(parser.line, "attribute without key"))?;
                let value = tag
                    .attr("value")
                    .ok_or_else(|| bad(parser.line, "attribute without value"))?;
                if let Some(ev) = event.as_mut() {
                    ev.set(&tag.name, &key, &value, parser.line)?;
                } else if key == "concept:name" {
                    // Trace-level name: the instance id.
                    let wid: u64 = value
                        .parse()
                        .map_err(|_| bad(parser.line, "trace concept:name is not a wid"))?;
                    current_wid = Some(Wid(wid));
                }
            }
            _ => {}
        }
    }
    Ok(Log::new(records)?)
}

fn bad(line: usize, message: impl Into<String>) -> ParseLogError {
    ParseLogError::BadShape {
        line,
        message: message.into(),
    }
}

#[derive(Default)]
struct EventBuilder {
    activity: Option<String>,
    is_lsn: Option<u32>,
    lsn: Option<u64>,
    input: AttrMap,
    output: AttrMap,
}

impl EventBuilder {
    fn set(&mut self, kind: &str, key: &str, raw: &str, line: usize) -> Result<(), ParseLogError> {
        let value = match kind {
            "int" => Value::Int(raw.parse().map_err(|_| bad(line, "bad int"))?),
            "float" => Value::Float(raw.parse().map_err(|_| bad(line, "bad float"))?),
            "boolean" => Value::Bool(raw == "true"),
            _ => {
                if raw == "⊥" {
                    Value::Undefined
                } else {
                    Value::from(unescape(raw))
                }
            }
        };
        match key {
            "concept:name" => self.activity = Some(unescape(raw)),
            "wlq:islsn" => {
                self.is_lsn =
                    Some(value.as_int().ok_or_else(|| bad(line, "islsn not int"))? as u32);
            }
            "wlq:lsn" => {
                self.lsn = Some(value.as_int().ok_or_else(|| bad(line, "lsn not int"))? as u64);
            }
            key if key.starts_with("wlq:in:") => {
                self.input.set(unescape(&key["wlq:in:".len()..]), value);
            }
            key if key.starts_with("wlq:out:") => {
                self.output.set(unescape(&key["wlq:out:".len()..]), value);
            }
            _ => {} // foreign XES attributes are ignored
        }
        Ok(())
    }

    fn finish(self, wid: Wid, line: usize) -> Result<LogRecord, ParseLogError> {
        let activity = self
            .activity
            .ok_or_else(|| bad(line, "event without concept:name"))?;
        let is_lsn = self
            .is_lsn
            .ok_or_else(|| bad(line, "event without wlq:islsn"))?;
        let lsn = self.lsn.ok_or_else(|| bad(line, "event without wlq:lsn"))?;
        Ok(LogRecord::new(
            lsn,
            wid,
            is_lsn,
            activity.as_str(),
            self.input,
            self.output,
        ))
    }
}

/// A found tag: name, attributes, and whether it was `</closing>`.
struct Tag {
    name: String,
    closing: bool,
    attrs: Vec<(String, String)>,
}

impl Tag {
    fn attr(&self, name: &str) -> Option<String> {
        self.attrs
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.clone())
    }
}

/// A minimal XML tag scanner for the subset we emit.
struct XmlScanner<'a> {
    rest: &'a str,
    line: usize,
}

impl<'a> XmlScanner<'a> {
    fn new(text: &'a str) -> Self {
        XmlScanner {
            rest: text,
            line: 1,
        }
    }

    fn next_tag(&mut self) -> Result<Option<Tag>, ParseLogError> {
        loop {
            let Some(start) = self.rest.find('<') else {
                return Ok(None);
            };
            self.line += self.rest[..start].matches('\n').count();
            self.rest = &self.rest[start..];
            let end = self
                .rest
                .find('>')
                .ok_or_else(|| bad(self.line, "unterminated tag"))?;
            let body = &self.rest[1..end];
            self.rest = &self.rest[end + 1..];
            if body.starts_with('?') || body.starts_with('!') {
                continue; // declaration or comment
            }
            let closing = body.starts_with('/');
            let body = body.trim_start_matches('/').trim_end_matches('/').trim();
            let (name, attr_text) = match body.split_once(char::is_whitespace) {
                Some((n, rest)) => (n, rest),
                None => (body, ""),
            };
            return Ok(Some(Tag {
                name: name.to_string(),
                closing,
                attrs: parse_attrs(attr_text, self.line)?,
            }));
        }
    }
}

fn parse_attrs(text: &str, line: usize) -> Result<Vec<(String, String)>, ParseLogError> {
    let mut attrs = Vec::new();
    let mut rest = text.trim();
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| bad(line, "attribute without '='"))?;
        let key = rest[..eq].trim().to_string();
        let after = rest[eq + 1..].trim_start();
        if !after.starts_with('"') {
            return Err(bad(line, "attribute value not quoted"));
        }
        let close = after[1..]
            .find('"')
            .ok_or_else(|| bad(line, "unterminated attribute value"))?;
        attrs.push((key, after[1..=close].to_string()));
        rest = after[close + 2..].trim_start();
    }
    Ok(attrs)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::paper;

    #[test]
    fn figure3_round_trips_through_xes() {
        let log = paper::figure3_log();
        let xes = write_xes(&log);
        let back = read_xes(&xes).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn document_structure_is_xes_shaped() {
        let xes = write_xes(&paper::figure3_log());
        assert!(xes.starts_with("<?xml"));
        assert!(xes.contains("<log xes.version=\"1.0\""));
        assert_eq!(xes.matches("<trace>").count(), 3);
        assert_eq!(xes.matches("<event>").count(), 20);
        assert!(xes.contains("<string key=\"concept:name\" value=\"CheckIn\"/>"));
    }

    #[test]
    fn xml_escaping_round_trips() {
        use crate::{attrs, LogBuilder};
        let mut b = LogBuilder::new();
        let w = b.start_instance();
        b.append(w, "A", attrs! { "note" => "a<b & \"c\">d" }, attrs! {})
            .unwrap();
        let log = b.build().unwrap();
        let back = read_xes(&write_xes(&log)).unwrap();
        assert_eq!(back, log);
    }

    #[test]
    fn all_value_kinds_round_trip() {
        use crate::{attrs, LogBuilder};
        let mut b = LogBuilder::new();
        let w = b.start_instance();
        b.append(
            w,
            "A",
            attrs! {
                "u" => Value::Undefined,
                "t" => true,
                "i" => -7i64,
                "f" => 1.25f64,
                "s" => "text",
            },
            attrs! {},
        )
        .unwrap();
        let log = b.build().unwrap();
        assert_eq!(read_xes(&write_xes(&log)).unwrap(), log);
    }

    #[test]
    fn malformed_documents_are_rejected() {
        assert!(read_xes("").is_err()); // empty: no records → invalid log
        assert!(read_xes("<log><trace><event></event></trace></log>").is_err());
        assert!(read_xes("<log><unterminated").is_err());
        assert!(
            read_xes("<log><event><string key=\"concept:name\" value=\"A\"/></event></log>")
                .is_err()
        );
    }

    #[test]
    fn foreign_attributes_are_tolerated() {
        // A hand-written trace with extra XES attributes we don't model.
        let xes = r#"<?xml version="1.0"?>
<log>
  <string key="meta" value="ignored"/>
  <trace>
    <string key="concept:name" value="1"/>
    <event>
      <string key="concept:name" value="START"/>
      <string key="org:resource" value="alice"/>
      <int key="wlq:islsn" value="1"/>
      <int key="wlq:lsn" value="1"/>
    </event>
  </trace>
</log>"#;
        let log = read_xes(xes).unwrap();
        assert_eq!(log.len(), 1);
        assert!(log.records()[0].is_start());
    }
}
