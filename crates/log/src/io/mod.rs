//! Log serialization: a human-readable text table, CSV, and a compact
//! binary encoding.
//!
//! There is no standard interchange structure for workflow logs (the paper
//! notes real systems spread them over several stores), so this module
//! provides three self-describing formats:
//!
//! * [`text`] — the pipe-separated table of the paper's Figure 3; good for
//!   eyeballing and for docs/tests.
//! * [`csv`] — comma-separated with quoting; good for spreadsheets and
//!   external tools.
//! * [`binary`] — length-prefixed binary built on [`bytes`]; good for
//!   large benchmark logs.
//! * [`xes`] — a pragmatic subset of the IEEE XES standard, for
//!   interchange with process-mining tools (ProM, pm4py).

pub mod binary;
pub mod csv;
pub mod text;
pub mod xes;

use crate::{AttrMap, Value};

/// Renders a value for the text/CSV formats. Strings that would not
/// re-parse as the same string (they look numeric/boolean, are empty,
/// have surrounding whitespace, or contain separator characters) are
/// double-quoted with backslash escapes; everything else uses the plain
/// [`Value`] display.
pub(crate) fn render_value(v: &Value) -> String {
    match v {
        Value::Str(s) if needs_quoting(s) => {
            let mut out = String::with_capacity(s.len() + 2);
            out.push('"');
            for c in s.chars() {
                if c == '"' || c == '\\' {
                    out.push('\\');
                }
                out.push(c);
            }
            out.push('"');
            out
        }
        Value::Float(x) => {
            // Floats must re-parse as floats: integral values get a
            // trailing `.0`, non-finite values use the reserved tokens
            // recognised by `parse_rendered_value`.
            if x.is_nan() {
                if x.is_sign_negative() {
                    "-NaN".to_string()
                } else {
                    "NaN".to_string()
                }
            } else if x.is_infinite() {
                if *x > 0.0 {
                    "inf".to_string()
                } else {
                    "-inf".to_string()
                }
            } else {
                let mut s = format!("{x}");
                if !s.contains(['.', 'e', 'E']) {
                    s.push_str(".0");
                }
                s
            }
        }
        other => other.to_string(),
    }
}

fn needs_quoting(s: &str) -> bool {
    if s.is_empty() || s.trim() != s {
        return true;
    }
    if s.contains(['"', '\\', ',', ';', '|', '=']) {
        return true;
    }
    // The reserved non-finite float tokens must stay floats.
    if matches!(s, "NaN" | "-NaN" | "inf" | "-inf") {
        return true;
    }
    // Would it re-parse as a non-string value? (Value's FromStr is
    // infallible: Err = Infallible.)
    let reparsed: Value = match s.parse() {
        Ok(v) => v,
        Err(never) => match never {},
    };
    !matches!(reparsed, Value::Str(_))
}

/// Parses a rendered value: a double-quoted token is unescaped into a
/// string; anything else goes through [`Value`]'s `FromStr`.
pub(crate) fn parse_rendered_value(s: &str) -> Value {
    let s = s.trim();
    match s {
        "NaN" => return Value::Float(f64::NAN),
        "-NaN" => return Value::Float(-f64::NAN),
        "inf" => return Value::Float(f64::INFINITY),
        "-inf" => return Value::Float(f64::NEG_INFINITY),
        _ => {}
    }
    if s.len() >= 2 && s.starts_with('"') && s.ends_with('"') {
        let inner = &s[1..s.len() - 1];
        let mut out = String::with_capacity(inner.len());
        let mut chars = inner.chars();
        while let Some(c) = chars.next() {
            if c == '\\' {
                if let Some(next) = chars.next() {
                    out.push(next);
                }
            } else {
                out.push(c);
            }
        }
        return Value::from(out);
    }
    match s.parse() {
        Ok(v) => v,
        Err(never) => match never {},
    }
}

/// Renders an attribute map as `name=value` entries joined by `sep`
/// (empty string for an empty map).
pub(crate) fn render_map(map: &AttrMap, sep: &str) -> String {
    let mut out = String::new();
    for (i, (k, v)) in map.iter().enumerate() {
        if i > 0 {
            out.push_str(sep);
        }
        out.push_str(k.as_str());
        out.push('=');
        out.push_str(&render_value(v));
    }
    out
}

/// Splits `name=value` entries on `sep`, ignoring separators inside
/// double-quoted values (with backslash escapes).
pub(crate) fn split_entries(s: &str, sep: char) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    let mut in_quotes = false;
    let mut escaped = false;
    for c in s.chars() {
        if escaped {
            cur.push(c);
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => {
                cur.push(c);
                escaped = true;
            }
            '"' => {
                cur.push(c);
                in_quotes = !in_quotes;
            }
            c if c == sep && !in_quotes => out.push(std::mem::take(&mut cur)),
            c => cur.push(c),
        }
    }
    out.push(cur);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn plain_values_render_unquoted() {
        assert_eq!(render_value(&Value::Int(42)), "42");
        assert_eq!(render_value(&Value::from("active")), "active");
        assert_eq!(
            render_value(&Value::from("Public Hospital")),
            "Public Hospital"
        );
        assert_eq!(render_value(&Value::Undefined), "⊥");
    }

    #[test]
    fn ambiguous_strings_are_quoted() {
        // Numeric-looking strings (hex ids with only digit/e characters).
        assert_eq!(render_value(&Value::from("12e34")), "\"12e34\"");
        assert_eq!(render_value(&Value::from("12345")), "\"12345\"");
        assert_eq!(render_value(&Value::from("true")), "\"true\"");
        assert_eq!(render_value(&Value::from("")), "\"\"");
        assert_eq!(render_value(&Value::from("a,b")), "\"a,b\"");
        assert_eq!(render_value(&Value::from("x=y")), "\"x=y\"");
    }

    #[test]
    fn rendered_values_round_trip() {
        for v in [
            Value::Int(-3),
            Value::Float(2.5),
            Value::Bool(false),
            Value::Undefined,
            Value::from("plain"),
            Value::from("12e34"),
            Value::from("999"),
            Value::from("with \"quotes\" and \\slash"),
            Value::from("a;b,c|d=e"),
            Value::from(" padded "),
            // Floats that print like integers or reserved tokens.
            Value::Float(0.0),
            Value::Float(-7.0),
            Value::Float(f64::NAN),
            Value::Float(-f64::NAN),
            Value::Float(f64::INFINITY),
            Value::Float(f64::NEG_INFINITY),
            // Strings colliding with the reserved float tokens.
            Value::from("NaN"),
            Value::from("-NaN"),
            Value::from("inf"),
            Value::from("-inf"),
            // Strings containing the field separator.
            Value::from("a|b"),
        ] {
            let rendered = render_value(&v);
            assert_eq!(parse_rendered_value(&rendered), v, "failed on {rendered}");
        }
    }

    #[test]
    fn integral_floats_render_distinguishably_from_ints() {
        assert_eq!(render_value(&Value::Float(3.0)), "3.0");
        assert_eq!(render_value(&Value::Int(3)), "3");
    }

    #[test]
    fn split_entries_respects_quotes() {
        let entries = split_entries(r#"a="x,y", b=2"#, ',');
        assert_eq!(entries, vec![r#"a="x,y""#, " b=2"]);
        let entries = split_entries(r#"a="he said \";\"";b=1"#, ';');
        assert_eq!(entries.len(), 2);
    }
}
