//! Interned names for activities and attributes.
//!
//! The paper assumes pairwise-disjoint countably infinite sets `T` of
//! activity names and `A` of attribute names. Both are represented as cheap
//! reference-counted strings with newtypes keeping the two namespaces apart
//! at the type level ([C-NEWTYPE]).

use std::borrow::Borrow;
use std::fmt;
use std::sync::Arc;

macro_rules! name_type {
    ($(#[$doc:meta])* $name:ident) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
        pub struct $name(Arc<str>);

        impl $name {
            /// Creates a name from anything string-like.
            pub fn new(s: impl AsRef<str>) -> Self {
                Self(Arc::from(s.as_ref()))
            }

            /// Returns the name as a string slice.
            #[must_use]
            pub fn as_str(&self) -> &str {
                &self.0
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl From<&str> for $name {
            fn from(s: &str) -> Self {
                Self::new(s)
            }
        }

        impl From<String> for $name {
            fn from(s: String) -> Self {
                Self::new(s)
            }
        }

        impl AsRef<str> for $name {
            fn as_ref(&self) -> &str {
                &self.0
            }
        }

        impl Borrow<str> for $name {
            fn borrow(&self) -> &str {
                &self.0
            }
        }

        impl PartialEq<str> for $name {
            fn eq(&self, other: &str) -> bool {
                self.as_str() == other
            }
        }

        impl PartialEq<&str> for $name {
            fn eq(&self, other: &&str) -> bool {
                self.as_str() == *other
            }
        }
    };
}

name_type! {
    /// An activity name, an element of the paper's set `T`.
    ///
    /// ```
    /// use wlq_log::Activity;
    /// let a = Activity::new("CheckIn");
    /// assert_eq!(a, "CheckIn");
    /// ```
    Activity
}

name_type! {
    /// An attribute name, an element of the paper's set `A`.
    ///
    /// ```
    /// use wlq_log::AttrName;
    /// let a = AttrName::new("balance");
    /// assert_eq!(a.as_str(), "balance");
    /// ```
    AttrName
}

impl Activity {
    /// The reserved activity name of the first record of every instance.
    #[must_use]
    pub fn start() -> Self {
        Activity::new(START_ACTIVITY)
    }

    /// The reserved activity name of the final record of a completed
    /// instance.
    #[must_use]
    pub fn end() -> Self {
        Activity::new(END_ACTIVITY)
    }

    /// Returns `true` if this is the reserved `START` activity.
    #[must_use]
    pub fn is_start(&self) -> bool {
        self.as_str() == START_ACTIVITY
    }

    /// Returns `true` if this is the reserved `END` activity.
    #[must_use]
    pub fn is_end(&self) -> bool {
        self.as_str() == END_ACTIVITY
    }
}

/// The reserved name of the record that opens every workflow instance.
pub const START_ACTIVITY: &str = "START";

/// The reserved name of the record that closes a completed instance.
pub const END_ACTIVITY: &str = "END";

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn names_compare_by_content() {
        assert_eq!(Activity::new("A"), Activity::from("A"));
        assert_ne!(Activity::new("A"), Activity::new("B"));
        assert_eq!(
            AttrName::new("balance"),
            AttrName::from("balance".to_string())
        );
    }

    #[test]
    fn names_are_usable_as_str_keyed_map_keys() {
        let mut set = HashSet::new();
        set.insert(Activity::new("SeeDoctor"));
        assert!(set.contains("SeeDoctor"));
        assert!(!set.contains("CheckIn"));
    }

    #[test]
    fn start_end_constructors_and_predicates() {
        assert!(Activity::start().is_start());
        assert!(Activity::end().is_end());
        assert!(!Activity::new("CheckIn").is_start());
        assert!(!Activity::start().is_end());
        assert_eq!(Activity::start().as_str(), START_ACTIVITY);
        assert_eq!(Activity::end().as_str(), END_ACTIVITY);
    }

    #[test]
    fn display_prints_raw_name() {
        assert_eq!(Activity::new("GetRefer").to_string(), "GetRefer");
        assert_eq!(AttrName::new("referId").to_string(), "referId");
    }

    #[cfg(feature = "serde")]
    #[test]
    fn serde_traits_are_implemented() {
        fn assert_serde<T: serde::Serialize + serde::de::DeserializeOwned>() {}
        assert_serde::<Activity>();
        assert_serde::<AttrName>();
    }

    #[test]
    fn ordering_is_lexicographic() {
        let mut v = vec![Activity::new("b"), Activity::new("a"), Activity::new("c")];
        v.sort();
        assert_eq!(
            v,
            vec![Activity::new("a"), Activity::new("b"), Activity::new("c")]
        );
    }
}
