//! Whole-log operations: merging, prefixes, and instance filtering.
//!
//! These are the warehouse-free counterparts of ETL plumbing: combine the
//! logs of several engines into one queryable log, or look at a log "as
//! of" an earlier point in time.

use std::collections::BTreeMap;

use crate::error::LogError;
use crate::log::Log;
use crate::record::{LogRecord, Lsn, Wid};

impl Log {
    /// Merges several logs into one, interleaving records in their
    /// original per-log order (round-robin by global position, stable
    /// within each input) and renumbering `lsn`s to `1..`. Workflow
    /// instance ids are re-assigned densely in order of first appearance
    /// so instances from different inputs never collide.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Empty`] if `logs` is empty. Any other error
    /// would indicate an invariant bug, since each input is already a
    /// valid log and the merge preserves per-instance record order.
    ///
    /// # Examples
    ///
    /// ```
    /// use wlq_log::{attrs, Log, LogBuilder};
    ///
    /// let mut a = LogBuilder::new();
    /// let w = a.start_instance();
    /// a.append(w, "A", attrs! {}, attrs! {})?;
    /// let a = a.build()?;
    ///
    /// let mut b = LogBuilder::new();
    /// let w = b.start_instance();
    /// b.append(w, "B", attrs! {}, attrs! {})?;
    /// let b = b.build()?;
    ///
    /// let merged = Log::merge([a, b])?;
    /// assert_eq!(merged.len(), 4);
    /// assert_eq!(merged.num_instances(), 2);
    /// # Ok::<(), wlq_log::LogError>(())
    /// ```
    pub fn merge(logs: impl IntoIterator<Item = Log>) -> Result<Log, LogError> {
        let sources: Vec<Vec<LogRecord>> = logs.into_iter().map(Log::into_records).collect();
        if sources.is_empty() {
            return Err(LogError::Empty);
        }
        let total: usize = sources.iter().map(Vec::len).sum();
        let mut wid_map: BTreeMap<(usize, Wid), Wid> = BTreeMap::new();
        let mut next_wid = 0u64;
        let mut merged: Vec<LogRecord> = Vec::with_capacity(total);

        // Round-robin over the sources to interleave fairly; within each
        // source, original order (and thus per-instance order) is kept.
        let mut cursors = vec![0usize; sources.len()];
        while merged.len() < total {
            for (src_idx, source) in sources.iter().enumerate() {
                let cursor = cursors[src_idx];
                if cursor >= source.len() {
                    continue;
                }
                cursors[src_idx] += 1;
                let record = &source[cursor];
                let wid = *wid_map.entry((src_idx, record.wid())).or_insert_with(|| {
                    next_wid += 1;
                    Wid(next_wid)
                });
                merged.push(LogRecord::new(
                    Lsn(merged.len() as u64 + 1),
                    wid,
                    record.is_lsn(),
                    record.activity().clone(),
                    record.input().clone(),
                    record.output().clone(),
                ));
            }
        }
        Log::new(merged)
    }

    /// The log "as of" global sequence number `upto` (inclusive): the
    /// prefix containing records `1..=upto`. Since every prefix of a
    /// valid log is valid (END records stay last, is-lsns stay
    /// consecutive), this always succeeds for `upto ≥ 1`.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Empty`] when `upto` is 0.
    pub fn prefix(&self, upto: Lsn) -> Result<Log, LogError> {
        let n = (upto.get() as usize).min(self.len());
        Log::new(self.records()[..n].to_vec())
    }

    /// A new log containing only the instances accepted by `keep`,
    /// renumbering `lsn`s to `1..` but keeping `wid`s and record order.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Empty`] when no instance is kept.
    pub fn filter_instances(&self, mut keep: impl FnMut(Wid) -> bool) -> Result<Log, LogError> {
        let mut records: Vec<LogRecord> = Vec::new();
        for record in self.iter() {
            if keep(record.wid()) {
                let mut r = record.clone();
                r.set_lsn(Lsn(records.len() as u64 + 1));
                records.push(r);
            }
        }
        Log::new(records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs;
    use crate::builder::LogBuilder;
    use crate::paper;
    use crate::record::IsLsn;

    fn two_instance_log(acts: &[&str]) -> Log {
        let mut b = LogBuilder::new();
        let w1 = b.start_instance();
        let w2 = b.start_instance();
        for (i, act) in acts.iter().enumerate() {
            let w = if i % 2 == 0 { w1 } else { w2 };
            b.append(w, *act, attrs! {}, attrs! {}).unwrap();
        }
        b.end_instance(w1).unwrap();
        b.build().unwrap()
    }

    #[test]
    fn merge_renumbers_wids_and_lsns() {
        let a = two_instance_log(&["A", "B"]);
        let b = two_instance_log(&["C", "D", "E"]);
        let merged = Log::merge([a.clone(), b.clone()]).unwrap();
        assert_eq!(merged.len(), a.len() + b.len());
        assert_eq!(merged.num_instances(), 4);
        // lsns are 1..=len (validated by Log::new), wids dense 1..=4.
        assert_eq!(
            merged.wids().map(Wid::get).collect::<Vec<_>>(),
            vec![1, 2, 3, 4]
        );
    }

    #[test]
    fn merge_preserves_per_instance_sequences() {
        let a = two_instance_log(&["A", "B", "C"]);
        let b = paper::figure3_log();
        let merged = Log::merge([a, b.clone()]).unwrap();
        // Find the merged instance matching Figure 3's wid 2 by looking
        // for the UpdateRefer activity.
        let update = merged
            .iter()
            .find(|r| r.activity().as_str() == "UpdateRefer")
            .unwrap();
        let acts: Vec<&str> = merged
            .instance(update.wid())
            .map(|r| r.activity().as_str())
            .collect();
        let orig: Vec<&str> = b.instance(Wid(2)).map(|r| r.activity().as_str()).collect();
        assert_eq!(acts, orig);
    }

    #[test]
    fn merge_of_single_log_is_isomorphic() {
        let log = paper::figure3_log();
        let merged = Log::merge([log.clone()]).unwrap();
        assert_eq!(merged.len(), log.len());
        // Same activity multiset per instance count.
        assert_eq!(merged.num_instances(), log.num_instances());
    }

    #[test]
    fn merge_of_nothing_is_an_error() {
        assert_eq!(Log::merge(Vec::<Log>::new()), Err(LogError::Empty));
    }

    #[test]
    fn prefix_is_valid_and_truncates() {
        let log = paper::figure3_log();
        let prefix = log.prefix(Lsn(8)).unwrap();
        assert_eq!(prefix.len(), 8);
        assert_eq!(prefix.num_instances(), 3);
        // wid 1 has records l1, l3, l4 in the prefix.
        assert_eq!(prefix.instance_len(Wid(1)), 3);
        // Beyond the end clamps.
        assert_eq!(log.prefix(Lsn(999)).unwrap().len(), 20);
        assert_eq!(log.prefix(Lsn(0)), Err(LogError::Empty));
    }

    #[test]
    fn every_prefix_of_a_valid_log_is_valid() {
        let log = two_instance_log(&["A", "B", "C", "D", "E"]);
        for upto in 1..=log.len() as u64 {
            let p = log.prefix(Lsn(upto)).unwrap();
            assert_eq!(p.len(), upto as usize);
        }
    }

    #[test]
    fn filter_instances_keeps_selected_wids() {
        let log = paper::figure3_log();
        let only2 = log.filter_instances(|w| w == Wid(2)).unwrap();
        assert_eq!(only2.num_instances(), 1);
        assert_eq!(only2.instance_len(Wid(2)), 9);
        assert_eq!(only2.records()[0].lsn(), Lsn(1));
        assert_eq!(only2.records()[0].is_lsn(), IsLsn(1));
        assert!(log.filter_instances(|_| false).is_err());
    }
}
