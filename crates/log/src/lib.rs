//! # wlq-log — the workflow log data model
//!
//! This crate implements the log formalism of *"Querying Workflow Logs"*
//! (Tang, Mackey, Su): [`LogRecord`] (Definition 1), [`Log`] with its four
//! validity conditions (Definition 2), incremental construction
//! ([`LogBuilder`]), secondary indexes for query evaluation ([`LogIndex`]),
//! statistics ([`LogStats`]), serialization ([`io`]), and the paper's
//! Figure 3 example log ([`paper`]).
//!
//! A log is a totally-ordered sequence of records, each recording one
//! activity execution of one workflow instance together with the attribute
//! values the activity read (`αin`) and wrote (`αout`).
//!
//! ## Quick start
//!
//! ```
//! use wlq_log::{attrs, LogBuilder, LogStats};
//!
//! // A workflow engine writes its log through a builder:
//! let mut b = LogBuilder::new();
//! let w = b.start_instance();
//! b.append(w, "GetRefer", attrs! {}, attrs! { "balance" => 1000i64 })?;
//! b.append(w, "CheckIn", attrs! { "balance" => 1000i64 }, attrs! {})?;
//! b.end_instance(w)?;
//! let log = b.build()?;
//!
//! assert_eq!(log.len(), 4);
//! assert!(log.is_completed(w));
//! println!("{}", LogStats::compute(&log));
//! # Ok::<(), wlq_log::LogError>(())
//! ```

#![warn(missing_docs)]
#![warn(clippy::all)]

mod attrs;
mod builder;
mod error;
mod index;
mod log;
mod names;
mod ops;
mod record;
mod stats;
mod value;

pub mod io;
pub mod paper;

pub use attrs::AttrMap;
pub use builder::LogBuilder;
pub use error::{LogError, ParseLogError};
pub use index::LogIndex;
pub use log::Log;
pub use names::{Activity, AttrName, END_ACTIVITY, START_ACTIVITY};
pub use record::{IsLsn, LogRecord, Lsn, Wid};
pub use stats::LogStats;
pub use value::Value;
