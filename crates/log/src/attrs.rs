//! Attribute maps: the `αin` / `αout` components of a log record.
//!
//! A *map* in the paper is a partial function `A → D` with finite domain.
//! [`AttrMap`] realises this as an ordered map from [`AttrName`] to
//! [`Value`], ordered so that display and serialization are deterministic.

use std::collections::BTreeMap;
use std::fmt;

use crate::names::AttrName;
use crate::value::Value;

/// A finite partial map from attribute names to values.
///
/// Used for both the input map `αin` (attributes *read* by an activity) and
/// the output map `αout` (attributes *written*).
///
/// # Examples
///
/// ```
/// use wlq_log::{AttrMap, Value};
///
/// let mut m = AttrMap::new();
/// m.set("balance", 1000i64);
/// m.set("referState", "active");
/// assert_eq!(m.get("balance"), Some(&Value::Int(1000)));
/// assert_eq!(m.len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AttrMap {
    entries: BTreeMap<AttrName, Value>,
}

impl AttrMap {
    /// Creates an empty map (the `-` entries of the paper's Figure 3).
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Returns the number of attributes in the map.
    #[must_use]
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the map defines no attribute.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sets `name` to `value`, returning the previous value if any.
    pub fn set(&mut self, name: impl Into<AttrName>, value: impl Into<Value>) -> Option<Value> {
        self.entries.insert(name.into(), value.into())
    }

    /// Builder-style [`set`](Self::set); handy for literal maps.
    ///
    /// ```
    /// use wlq_log::AttrMap;
    /// let m = AttrMap::new().with("a", 1i64).with("b", "x");
    /// assert_eq!(m.len(), 2);
    /// ```
    #[must_use]
    pub fn with(mut self, name: impl Into<AttrName>, value: impl Into<Value>) -> Self {
        self.set(name, value);
        self
    }

    /// Looks up the value of `name`, or `None` if the map does not define it.
    #[must_use]
    pub fn get(&self, name: &str) -> Option<&Value> {
        self.entries.get(name)
    }

    /// Looks up `name`, treating absence as the undefined value `⊥`.
    ///
    /// This matches the paper's convention that an attribute outside the
    /// map's domain is undefined.
    #[must_use]
    pub fn get_or_undefined(&self, name: &str) -> Value {
        self.get(name).cloned().unwrap_or(Value::Undefined)
    }

    /// Returns `true` if the map defines `name`.
    #[must_use]
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Removes `name` from the map, returning its value if present.
    pub fn remove(&mut self, name: &str) -> Option<Value> {
        self.entries.remove(name)
    }

    /// Iterates over `(name, value)` pairs in attribute-name order.
    pub fn iter(&self) -> impl Iterator<Item = (&AttrName, &Value)> {
        self.entries.iter()
    }

    /// Iterates over the attribute names (the map's domain) in order.
    pub fn names(&self) -> impl Iterator<Item = &AttrName> {
        self.entries.keys()
    }

    /// Merges `other` into `self`; entries of `other` win on conflicts.
    ///
    /// Used by the workflow engine to apply an activity's output map to an
    /// instance's attribute store.
    pub fn apply(&mut self, other: &AttrMap) {
        for (k, v) in other.iter() {
            self.entries.insert(k.clone(), v.clone());
        }
    }
}

impl fmt::Display for AttrMap {
    /// Formats the map the way the paper's Figure 3 does:
    /// `a=1, b=x`, or `-` when empty.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.entries.is_empty() {
            return f.write_str("-");
        }
        let mut first = true;
        for (k, v) in &self.entries {
            if !first {
                f.write_str(", ")?;
            }
            write!(f, "{k}={v}")?;
            first = false;
        }
        Ok(())
    }
}

impl<N: Into<AttrName>, V: Into<Value>> FromIterator<(N, V)> for AttrMap {
    fn from_iter<I: IntoIterator<Item = (N, V)>>(iter: I) -> Self {
        let mut m = AttrMap::new();
        for (n, v) in iter {
            m.set(n, v);
        }
        m
    }
}

impl<N: Into<AttrName>, V: Into<Value>> Extend<(N, V)> for AttrMap {
    fn extend<I: IntoIterator<Item = (N, V)>>(&mut self, iter: I) {
        for (n, v) in iter {
            self.set(n, v);
        }
    }
}

impl IntoIterator for AttrMap {
    type Item = (AttrName, Value);
    type IntoIter = std::collections::btree_map::IntoIter<AttrName, Value>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.into_iter()
    }
}

impl<'a> IntoIterator for &'a AttrMap {
    type Item = (&'a AttrName, &'a Value);
    type IntoIter = std::collections::btree_map::Iter<'a, AttrName, Value>;

    fn into_iter(self) -> Self::IntoIter {
        self.entries.iter()
    }
}

/// Convenience macro for attribute-map literals.
///
/// ```
/// use wlq_log::{attrs, Value};
/// let m = attrs! { "referId" => "034d1", "balance" => 1000i64 };
/// assert_eq!(m.get("balance"), Some(&Value::Int(1000)));
/// ```
#[macro_export]
macro_rules! attrs {
    () => { $crate::AttrMap::new() };
    ($($name:expr => $value:expr),+ $(,)?) => {{
        let mut m = $crate::AttrMap::new();
        $( m.set($name, $value); )+
        m
    }};
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_map_displays_as_dash() {
        assert_eq!(AttrMap::new().to_string(), "-");
        assert!(AttrMap::new().is_empty());
    }

    #[test]
    fn set_get_remove_round_trip() {
        let mut m = AttrMap::new();
        assert_eq!(m.set("a", 1i64), None);
        assert_eq!(m.set("a", 2i64), Some(Value::Int(1)));
        assert_eq!(m.get("a"), Some(&Value::Int(2)));
        assert_eq!(m.remove("a"), Some(Value::Int(2)));
        assert!(m.is_empty());
    }

    #[test]
    fn get_or_undefined_models_partial_function() {
        let m = attrs! { "x" => 1i64 };
        assert_eq!(m.get_or_undefined("x"), Value::Int(1));
        assert_eq!(m.get_or_undefined("missing"), Value::Undefined);
    }

    #[test]
    fn display_is_sorted_and_comma_separated() {
        let m = attrs! { "b" => 2i64, "a" => 1i64 };
        assert_eq!(m.to_string(), "a=1, b=2");
    }

    #[test]
    fn apply_overwrites_and_extends() {
        let mut store = attrs! { "balance" => 1000i64, "state" => "start" };
        let out = attrs! { "state" => "active", "receipt" => 560i64 };
        store.apply(&out);
        assert_eq!(store.get_or_undefined("state"), Value::from("active"));
        assert_eq!(store.get_or_undefined("balance"), Value::Int(1000));
        assert_eq!(store.get_or_undefined("receipt"), Value::Int(560));
    }

    #[test]
    fn from_iterator_and_extend() {
        let mut m: AttrMap = vec![("a", 1i64), ("b", 2i64)].into_iter().collect();
        m.extend(vec![("c", 3i64)]);
        assert_eq!(m.len(), 3);
        let names: Vec<_> = m.names().map(AttrName::to_string).collect();
        assert_eq!(names, ["a", "b", "c"]);
    }

    #[test]
    fn maps_are_comparable_and_hashable() {
        use std::collections::HashSet;
        let a = attrs! { "x" => 1i64 };
        let b = attrs! { "x" => 1i64 };
        let c = attrs! { "x" => 2i64 };
        assert_eq!(a, b);
        assert_ne!(a, c);
        let mut set = HashSet::new();
        set.insert(a);
        assert!(set.contains(&b));
        assert!(!set.contains(&c));
    }
}
