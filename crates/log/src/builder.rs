//! Incremental, always-valid log construction.

use std::collections::BTreeMap;

use crate::attrs::AttrMap;
use crate::error::LogError;
use crate::log::Log;
use crate::names::Activity;
use crate::record::{IsLsn, LogRecord, Lsn, Wid};

/// Builds a [`Log`] record by record, maintaining Definition 2 by
/// construction: the builder assigns `lsn` and `is-lsn`, emits `START`
/// records on instance creation, and refuses appends to closed instances.
///
/// This is how a workflow engine writes its log: interleaved appends from
/// many live instances, each append producing the next global `lsn`.
///
/// # Examples
///
/// ```
/// use wlq_log::{attrs, LogBuilder};
///
/// let mut b = LogBuilder::new();
/// let w1 = b.start_instance();
/// let w2 = b.start_instance();
/// b.append(w1, "GetRefer", attrs! {}, attrs! { "balance" => 1000i64 })?;
/// b.append(w2, "GetRefer", attrs! {}, attrs! { "balance" => 2000i64 })?;
/// b.end_instance(w1)?;
/// let log = b.build()?;
/// assert_eq!(log.len(), 5); // 2 STARTs + 2 appends + 1 END
/// # Ok::<(), wlq_log::LogError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct LogBuilder {
    records: Vec<LogRecord>,
    next_wid: u64,
    state: BTreeMap<Wid, InstanceState>,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct InstanceState {
    next_is_lsn: IsLsn,
    closed: bool,
}

impl LogBuilder {
    /// Creates an empty builder.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of records written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if no record has been written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    fn next_lsn(&self) -> Lsn {
        Lsn(self.records.len() as u64 + 1)
    }

    /// Opens a new workflow instance, writing its `START` record, and
    /// returns the fresh instance id.
    pub fn start_instance(&mut self) -> Wid {
        self.next_wid += 1;
        let wid = Wid(self.next_wid);
        self.records.push(LogRecord::start(self.next_lsn(), wid));
        self.state.insert(
            wid,
            InstanceState {
                next_is_lsn: IsLsn(2),
                closed: false,
            },
        );
        wid
    }

    /// Opens an instance with a caller-chosen id (e.g. when replaying an
    /// external log).
    ///
    /// # Errors
    ///
    /// Returns [`LogError::DuplicateLsn`] — never; returns
    /// [`LogError::InstanceClosed`] if `wid` was already started (open or
    /// closed).
    pub fn start_instance_with_id(&mut self, wid: Wid) -> Result<(), LogError> {
        if self.state.contains_key(&wid) {
            return Err(LogError::InstanceClosed(wid));
        }
        self.next_wid = self.next_wid.max(wid.get());
        self.records.push(LogRecord::start(self.next_lsn(), wid));
        self.state.insert(
            wid,
            InstanceState {
                next_is_lsn: IsLsn(2),
                closed: false,
            },
        );
        Ok(())
    }

    /// Appends an activity execution to instance `wid`.
    ///
    /// # Errors
    ///
    /// Returns [`LogError::UnknownInstance`] if `wid` was never started and
    /// [`LogError::InstanceClosed`] if it already has an `END` record.
    pub fn append(
        &mut self,
        wid: Wid,
        activity: impl Into<Activity>,
        input: AttrMap,
        output: AttrMap,
    ) -> Result<&LogRecord, LogError> {
        let lsn = self.next_lsn();
        let st = self
            .state
            .get_mut(&wid)
            .ok_or(LogError::UnknownInstance(wid))?;
        if st.closed {
            return Err(LogError::InstanceClosed(wid));
        }
        let rec = LogRecord::new(lsn, wid, st.next_is_lsn, activity, input, output);
        st.next_is_lsn = st.next_is_lsn.next();
        self.records.push(rec);
        Ok(&self.records[self.records.len() - 1])
    }

    /// Closes instance `wid` with an `END` record.
    ///
    /// # Errors
    ///
    /// Same conditions as [`append`](Self::append).
    pub fn end_instance(&mut self, wid: Wid) -> Result<(), LogError> {
        let lsn = self.next_lsn();
        let st = self
            .state
            .get_mut(&wid)
            .ok_or(LogError::UnknownInstance(wid))?;
        if st.closed {
            return Err(LogError::InstanceClosed(wid));
        }
        self.records.push(LogRecord::end(lsn, wid, st.next_is_lsn));
        st.next_is_lsn = st.next_is_lsn.next();
        st.closed = true;
        Ok(())
    }

    /// Returns `true` if `wid` is started and not yet closed.
    #[must_use]
    pub fn is_open(&self, wid: Wid) -> bool {
        self.state.get(&wid).is_some_and(|s| !s.closed)
    }

    /// The instance ids currently open.
    pub fn open_instances(&self) -> impl Iterator<Item = Wid> + '_ {
        self.state
            .iter()
            .filter(|(_, s)| !s.closed)
            .map(|(w, _)| *w)
    }

    /// A view of the records written so far, in lsn order.
    #[must_use]
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Finalises the builder into a validated [`Log`].
    ///
    /// # Errors
    ///
    /// Returns [`LogError::Empty`] if nothing was written. Any other error
    /// would indicate a bug in the builder, since appends maintain the
    /// invariants; the result is re-validated regardless (defence in depth).
    pub fn build(self) -> Result<Log, LogError> {
        Log::new(self.records)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs;

    #[test]
    fn builder_assigns_lsn_and_is_lsn() {
        let mut b = LogBuilder::new();
        let w1 = b.start_instance();
        let w2 = b.start_instance();
        assert_eq!(w1, Wid(1));
        assert_eq!(w2, Wid(2));
        b.append(w1, "A", attrs! {}, attrs! {}).unwrap();
        b.append(w2, "B", attrs! {}, attrs! {}).unwrap();
        b.append(w1, "C", attrs! {}, attrs! {}).unwrap();
        let log = b.build().unwrap();
        assert_eq!(log.len(), 5);
        let r = log.get(Lsn(5)).unwrap();
        assert_eq!(r.wid(), w1);
        assert_eq!(r.is_lsn(), IsLsn(3));
        assert_eq!(r.activity().as_str(), "C");
    }

    #[test]
    fn appends_to_unknown_instance_fail() {
        let mut b = LogBuilder::new();
        let err = b.append(Wid(7), "A", attrs! {}, attrs! {}).unwrap_err();
        assert_eq!(err, LogError::UnknownInstance(Wid(7)));
    }

    #[test]
    fn appends_after_end_fail() {
        let mut b = LogBuilder::new();
        let w = b.start_instance();
        b.end_instance(w).unwrap();
        assert_eq!(
            b.append(w, "A", attrs! {}, attrs! {}).unwrap_err(),
            LogError::InstanceClosed(w)
        );
        assert_eq!(b.end_instance(w).unwrap_err(), LogError::InstanceClosed(w));
    }

    #[test]
    fn open_instances_tracks_lifecycle() {
        let mut b = LogBuilder::new();
        let w1 = b.start_instance();
        let w2 = b.start_instance();
        assert!(b.is_open(w1));
        b.end_instance(w1).unwrap();
        assert!(!b.is_open(w1));
        assert_eq!(b.open_instances().collect::<Vec<_>>(), vec![w2]);
    }

    #[test]
    fn explicit_ids_are_honoured_and_deduplicated() {
        let mut b = LogBuilder::new();
        b.start_instance_with_id(Wid(10)).unwrap();
        assert!(b.start_instance_with_id(Wid(10)).is_err());
        // Auto ids continue after the explicit one.
        let w = b.start_instance();
        assert_eq!(w, Wid(11));
    }

    #[test]
    fn empty_builder_fails_to_build() {
        assert_eq!(LogBuilder::new().build(), Err(LogError::Empty));
    }

    #[test]
    fn built_logs_are_always_valid() {
        // Interleave heavily; the result must pass Log::new validation.
        let mut b = LogBuilder::new();
        let wids: Vec<Wid> = (0..5).map(|_| b.start_instance()).collect();
        for round in 0..10 {
            for (i, &w) in wids.iter().enumerate() {
                if (round + i) % 3 == 0 {
                    b.append(w, "T", attrs! {}, attrs! {}).unwrap();
                }
            }
        }
        for &w in &wids[..2] {
            b.end_instance(w).unwrap();
        }
        let log = b.build().unwrap();
        assert_eq!(log.num_instances(), 5);
        assert!(log.is_completed(Wid(1)));
        assert!(!log.is_completed(Wid(5)));
    }
}
