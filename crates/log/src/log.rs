//! The [`Log`] container and its validity checking (Definition 2).

use std::collections::BTreeMap;
use std::fmt;

use crate::error::LogError;
use crate::names::Activity;
use crate::record::{IsLsn, LogRecord, Lsn, Wid};

/// A workflow log: a nonempty, totally-ordered collection of [`LogRecord`]s
/// satisfying the four conditions of Definition 2.
///
/// 1. The log sequence numbers of the records are exactly `1..=|L|`.
/// 2. `is-lsn(l) = 1` iff `act(l) = START`.
/// 3. Each instance's is-lsns are consecutive from 1, and a record with
///    `is-lsn = k+1` appears after the record with `is-lsn = k` of the same
///    instance.
/// 4. An `END` record is the last record of its instance.
///
/// A `Log` is immutable once constructed; [`Log::new`] validates all four
/// conditions and builds a per-instance index. For incremental construction
/// use [`LogBuilder`](crate::LogBuilder); for append-only consumption (the
/// streaming evaluator) see [`Log::records`] and the engine crate.
///
/// # Examples
///
/// ```
/// use wlq_log::{Log, LogRecord, AttrMap};
///
/// let log = Log::new(vec![
///     LogRecord::start(1u64, 1u64),
///     LogRecord::new(2u64, 1u64, 2u32, "GetRefer", AttrMap::new(), AttrMap::new()),
/// ])?;
/// assert_eq!(log.len(), 2);
/// assert_eq!(log.num_instances(), 1);
/// # Ok::<(), wlq_log::LogError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log {
    /// Records sorted by lsn; `records[i].lsn() == i + 1`.
    records: Vec<LogRecord>,
    /// For each instance, the positions of its records in `records`, in
    /// is-lsn order.
    by_wid: BTreeMap<Wid, Vec<usize>>,
}

impl Log {
    /// Builds a log from records, validating Definition 2.
    ///
    /// The records may be supplied in any order; they are sorted by lsn.
    ///
    /// # Errors
    ///
    /// Returns a [`LogError`] describing the first violated condition.
    pub fn new(mut records: Vec<LogRecord>) -> Result<Self, LogError> {
        if records.is_empty() {
            return Err(LogError::Empty);
        }
        records.sort_by_key(LogRecord::lsn);

        // Condition 1: lsns are a bijection with 1..=|L|.
        for (i, r) in records.iter().enumerate() {
            let expected = Lsn(i as u64 + 1);
            let found = r.lsn();
            if found != expected {
                // Distinguish duplicates from gaps for better messages.
                if i > 0 && records[i - 1].lsn() == found {
                    return Err(LogError::DuplicateLsn(found));
                }
                return Err(LogError::LsnGap { expected, found });
            }
        }

        // Conditions 2–4, checked in one pass in lsn order.
        let mut by_wid: BTreeMap<Wid, Vec<usize>> = BTreeMap::new();
        let mut next_is_lsn: BTreeMap<Wid, IsLsn> = BTreeMap::new();
        let mut closed: BTreeMap<Wid, bool> = BTreeMap::new();
        for (i, r) in records.iter().enumerate() {
            let wid = r.wid();
            if closed.get(&wid).copied().unwrap_or(false) {
                return Err(LogError::RecordAfterEnd { wid, lsn: r.lsn() });
            }
            // Condition 2: is-lsn = 1 iff START.
            if (r.is_lsn() == IsLsn::FIRST) != r.is_start() {
                return Err(LogError::StartMismatch { lsn: r.lsn(), wid });
            }
            // Condition 3: consecutive is-lsn per instance, in lsn order.
            let expected = next_is_lsn.get(&wid).copied().unwrap_or(IsLsn::FIRST);
            if r.is_lsn() != expected {
                return Err(LogError::NonConsecutiveIsLsn {
                    wid,
                    expected,
                    found: r.is_lsn(),
                });
            }
            next_is_lsn.insert(wid, expected.next());
            if r.is_end() {
                closed.insert(wid, true);
            }
            by_wid.entry(wid).or_default().push(i);
        }

        Ok(Log { records, by_wid })
    }

    /// Number of records, `|L|`.
    #[must_use]
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Returns `true` if the log holds no records. Always `false` for a
    /// validated log (Definition 2 requires nonemptiness); provided for
    /// the standard container contract.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// All records in lsn order.
    #[must_use]
    pub fn records(&self) -> &[LogRecord] {
        &self.records
    }

    /// Iterates over records in lsn order.
    pub fn iter(&self) -> std::slice::Iter<'_, LogRecord> {
        self.records.iter()
    }

    /// Looks up the record with global sequence number `lsn`.
    #[must_use]
    pub fn get(&self, lsn: Lsn) -> Option<&LogRecord> {
        let idx = lsn.get().checked_sub(1)? as usize;
        self.records.get(idx)
    }

    /// Looks up a record by `(wid, is-lsn)` — the coordinates incident
    /// semantics work in.
    #[must_use]
    pub fn record(&self, wid: Wid, is_lsn: IsLsn) -> Option<&LogRecord> {
        let positions = self.by_wid.get(&wid)?;
        let idx = (is_lsn.get() as usize).checked_sub(1)?;
        positions.get(idx).map(|&p| &self.records[p])
    }

    /// The distinct instance ids present, in ascending order.
    pub fn wids(&self) -> impl Iterator<Item = Wid> + '_ {
        self.by_wid.keys().copied()
    }

    /// Number of distinct workflow instances.
    #[must_use]
    pub fn num_instances(&self) -> usize {
        self.by_wid.len()
    }

    /// The records of instance `wid` in is-lsn order (empty if unknown).
    pub fn instance(&self, wid: Wid) -> impl Iterator<Item = &LogRecord> + '_ {
        self.by_wid
            .get(&wid)
            .map(Vec::as_slice)
            .unwrap_or_default()
            .iter()
            .map(move |&p| &self.records[p])
    }

    /// Number of records of instance `wid` (0 if unknown).
    #[must_use]
    pub fn instance_len(&self, wid: Wid) -> usize {
        self.by_wid.get(&wid).map_or(0, Vec::len)
    }

    /// Returns `true` if instance `wid` has an `END` record.
    #[must_use]
    pub fn is_completed(&self, wid: Wid) -> bool {
        self.by_wid
            .get(&wid)
            .and_then(|ps| ps.last())
            .is_some_and(|&p| self.records[p].is_end())
    }

    /// The distinct activity names occurring in the log, sorted.
    #[must_use]
    pub fn activities(&self) -> Vec<Activity> {
        let mut set: Vec<Activity> = self.records.iter().map(|r| r.activity().clone()).collect();
        set.sort();
        set.dedup();
        set
    }

    /// Consumes the log, returning its records in lsn order.
    #[must_use]
    pub fn into_records(self) -> Vec<LogRecord> {
        self.records
    }

    /// Extracts the single-instance sub-log of `wid`, re-numbering lsns to
    /// `1..` while preserving order (used by partitioned evaluation).
    ///
    /// # Errors
    ///
    /// Returns [`LogError::UnknownInstance`] if `wid` is not in the log.
    pub fn project_instance(&self, wid: Wid) -> Result<Log, LogError> {
        let positions = self
            .by_wid
            .get(&wid)
            .ok_or(LogError::UnknownInstance(wid))?;
        let mut records: Vec<LogRecord> =
            positions.iter().map(|&p| self.records[p].clone()).collect();
        for (i, r) in records.iter_mut().enumerate() {
            r.set_lsn(Lsn(i as u64 + 1));
        }
        Log::new(records)
    }
}

impl fmt::Display for Log {
    /// Prints the log as a Figure 3-style table, one record per line.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "lsn | wid | is-lsn | t | αin | αout")?;
        for r in &self.records {
            writeln!(f, "{r}")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Log {
    type Item = &'a LogRecord;
    type IntoIter = std::slice::Iter<'a, LogRecord>;

    fn into_iter(self) -> Self::IntoIter {
        self.records.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::attrs::AttrMap;

    fn rec(lsn: u64, wid: u64, is_lsn: u32, act: &str) -> LogRecord {
        LogRecord::new(lsn, wid, is_lsn, act, AttrMap::new(), AttrMap::new())
    }

    fn small_valid() -> Vec<LogRecord> {
        vec![
            LogRecord::start(1, 1u64),
            LogRecord::start(2, 2u64),
            rec(3, 1, 2, "A"),
            rec(4, 2, 2, "B"),
            rec(5, 1, 3, "C"),
            LogRecord::end(6, 1u64, 4u32),
        ]
    }

    #[test]
    fn valid_log_is_accepted_and_indexed() {
        let log = Log::new(small_valid()).unwrap();
        assert_eq!(log.len(), 6);
        assert_eq!(log.num_instances(), 2);
        assert_eq!(log.wids().collect::<Vec<_>>(), vec![Wid(1), Wid(2)]);
        assert_eq!(log.instance_len(Wid(1)), 4);
        assert_eq!(log.instance_len(Wid(2)), 2);
        assert!(log.is_completed(Wid(1)));
        assert!(!log.is_completed(Wid(2)));
    }

    #[test]
    fn records_may_arrive_unsorted() {
        let mut rs = small_valid();
        rs.reverse();
        let log = Log::new(rs).unwrap();
        assert_eq!(log.records()[0].lsn(), Lsn(1));
        assert_eq!(log.records()[5].lsn(), Lsn(6));
    }

    #[test]
    fn empty_log_is_rejected() {
        assert_eq!(Log::new(vec![]), Err(LogError::Empty));
    }

    #[test]
    fn duplicate_lsn_is_rejected() {
        let rs = vec![LogRecord::start(1, 1u64), rec(1, 1, 2, "A")];
        assert_eq!(Log::new(rs), Err(LogError::DuplicateLsn(Lsn(1))));
    }

    #[test]
    fn lsn_gap_is_rejected() {
        let rs = vec![LogRecord::start(1, 1u64), rec(3, 1, 2, "A")];
        assert_eq!(
            Log::new(rs),
            Err(LogError::LsnGap {
                expected: Lsn(2),
                found: Lsn(3)
            })
        );
    }

    #[test]
    fn lsn_zero_is_rejected() {
        let rs = vec![LogRecord::new(
            0u64,
            1u64,
            1u32,
            "START",
            AttrMap::new(),
            AttrMap::new(),
        )];
        assert_eq!(
            Log::new(rs),
            Err(LogError::LsnGap {
                expected: Lsn(1),
                found: Lsn(0)
            })
        );
    }

    #[test]
    fn first_record_of_instance_must_be_start() {
        // Condition 2: is-lsn 1 with non-START activity.
        let rs = vec![rec(1, 1, 1, "A")];
        assert_eq!(
            Log::new(rs),
            Err(LogError::StartMismatch {
                lsn: Lsn(1),
                wid: Wid(1)
            })
        );
    }

    #[test]
    fn start_with_later_is_lsn_is_rejected() {
        // Condition 2, other direction: START with is-lsn ≠ 1.
        let rs = vec![
            LogRecord::start(1, 1u64),
            LogRecord::new(2u64, 1u64, 2u32, "START", AttrMap::new(), AttrMap::new()),
        ];
        assert_eq!(
            Log::new(rs),
            Err(LogError::StartMismatch {
                lsn: Lsn(2),
                wid: Wid(1)
            })
        );
    }

    #[test]
    fn is_lsn_gap_within_instance_is_rejected() {
        let rs = vec![LogRecord::start(1, 1u64), rec(2, 1, 3, "A")];
        assert_eq!(
            Log::new(rs),
            Err(LogError::NonConsecutiveIsLsn {
                wid: Wid(1),
                expected: IsLsn(2),
                found: IsLsn(3)
            })
        );
    }

    #[test]
    fn is_lsn_must_increase_in_lsn_order() {
        // Instance records must appear in is-lsn order by lsn: here is-lsn 3
        // comes before is-lsn 2 globally.
        let rs = vec![
            LogRecord::start(1, 1u64),
            rec(2, 1, 3, "A"),
            rec(3, 1, 2, "B"),
        ];
        assert!(matches!(
            Log::new(rs),
            Err(LogError::NonConsecutiveIsLsn { .. })
        ));
    }

    #[test]
    fn record_after_end_is_rejected() {
        let rs = vec![
            LogRecord::start(1, 1u64),
            LogRecord::end(2, 1u64, 2u32),
            rec(3, 1, 3, "A"),
        ];
        assert_eq!(
            Log::new(rs),
            Err(LogError::RecordAfterEnd {
                wid: Wid(1),
                lsn: Lsn(3)
            })
        );
    }

    #[test]
    fn get_by_lsn_and_by_wid_islsn() {
        let log = Log::new(small_valid()).unwrap();
        assert_eq!(log.get(Lsn(3)).unwrap().activity().as_str(), "A");
        assert_eq!(log.get(Lsn(0)), None);
        assert_eq!(log.get(Lsn(7)), None);
        assert_eq!(
            log.record(Wid(2), IsLsn(2)).unwrap().activity().as_str(),
            "B"
        );
        assert_eq!(log.record(Wid(2), IsLsn(3)), None);
        assert_eq!(log.record(Wid(9), IsLsn(1)), None);
    }

    #[test]
    fn instance_iterates_in_is_lsn_order() {
        let log = Log::new(small_valid()).unwrap();
        let acts: Vec<_> = log
            .instance(Wid(1))
            .map(|r| r.activity().as_str().to_string())
            .collect();
        assert_eq!(acts, ["START", "A", "C", "END"]);
    }

    #[test]
    fn activities_are_sorted_and_deduped() {
        let log = Log::new(small_valid()).unwrap();
        let acts: Vec<_> = log
            .activities()
            .iter()
            .map(|a| a.as_str().to_string())
            .collect();
        assert_eq!(acts, ["A", "B", "C", "END", "START"]);
    }

    #[test]
    fn project_instance_renumbers_lsns() {
        let log = Log::new(small_valid()).unwrap();
        let sub = log.project_instance(Wid(2)).unwrap();
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.records()[0].lsn(), Lsn(1));
        assert_eq!(sub.records()[1].lsn(), Lsn(2));
        assert_eq!(sub.records()[1].activity().as_str(), "B");
        assert!(log.project_instance(Wid(9)).is_err());
    }

    #[test]
    fn display_has_header_and_one_line_per_record() {
        let log = Log::new(small_valid()).unwrap();
        let text = log.to_string();
        assert_eq!(text.lines().count(), 7);
        assert!(text.starts_with("lsn | wid"));
    }
}
