//! Error types for log construction, validation, and parsing.

use std::fmt;

use crate::record::{IsLsn, Lsn, Wid};

/// Violations of the log validity conditions of Definition 2, plus
/// structural errors detectable during construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogError {
    /// A log must be a nonempty set of records.
    Empty,
    /// Two records share a log sequence number (violates condition 1).
    DuplicateLsn(Lsn),
    /// The set of lsns is not exactly `1..=|L|` (violates condition 1).
    LsnGap {
        /// The lsn that was expected at this position.
        expected: Lsn,
        /// The lsn that was found.
        found: Lsn,
    },
    /// A record has `is-lsn = 1` but its activity is not `START`, or has
    /// activity `START` with `is-lsn ≠ 1` (violates condition 2).
    StartMismatch {
        /// The offending record's lsn.
        lsn: Lsn,
        /// The offending record's wid.
        wid: Wid,
    },
    /// The is-lsns of an instance are not consecutive from 1 (violates
    /// condition 3).
    NonConsecutiveIsLsn {
        /// The instance in which the gap occurs.
        wid: Wid,
        /// The is-lsn that was expected next for this instance.
        expected: IsLsn,
        /// The is-lsn that was found.
        found: IsLsn,
    },
    /// A record of an instance appears after that instance's `END` record
    /// (violates condition 4).
    RecordAfterEnd {
        /// The instance that was already closed.
        wid: Wid,
        /// The lsn of the offending record.
        lsn: Lsn,
    },
    /// An operation referenced an instance id that the log (or builder)
    /// does not know.
    UnknownInstance(Wid),
    /// An append was attempted on an instance already closed by `END`.
    InstanceClosed(Wid),
}

impl fmt::Display for LogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LogError::Empty => write!(f, "log must contain at least one record"),
            LogError::DuplicateLsn(lsn) => write!(f, "duplicate log sequence number {lsn}"),
            LogError::LsnGap { expected, found } => {
                write!(f, "log sequence numbers are not 1..=|L|: expected {expected}, found {found}")
            }
            LogError::StartMismatch { lsn, wid } => write!(
                f,
                "record {lsn} of instance {wid} violates the START convention (is-lsn = 1 iff activity = START)"
            ),
            LogError::NonConsecutiveIsLsn { wid, expected, found } => write!(
                f,
                "instance {wid} has non-consecutive is-lsn: expected {expected}, found {found}"
            ),
            LogError::RecordAfterEnd { wid, lsn } => {
                write!(f, "record {lsn} of instance {wid} appears after the instance's END record")
            }
            LogError::UnknownInstance(wid) => write!(f, "unknown workflow instance {wid}"),
            LogError::InstanceClosed(wid) => {
                write!(f, "workflow instance {wid} is already closed by END")
            }
        }
    }
}

impl std::error::Error for LogError {}

/// Errors raised while parsing a textual or CSV log representation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ParseLogError {
    /// A line did not have the expected number of fields.
    BadShape {
        /// 1-based line number.
        line: usize,
        /// What was wrong with the line.
        message: String,
    },
    /// A numeric field failed to parse.
    BadNumber {
        /// 1-based line number.
        line: usize,
        /// The field name (`lsn`, `wid`, or `is-lsn`).
        field: &'static str,
        /// The raw text that failed to parse.
        text: String,
    },
    /// The parsed records do not form a valid log.
    Invalid(LogError),
}

impl fmt::Display for ParseLogError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseLogError::BadShape { line, message } => {
                write!(f, "line {line}: {message}")
            }
            ParseLogError::BadNumber { line, field, text } => {
                write!(f, "line {line}: field {field} is not a number: {text:?}")
            }
            ParseLogError::Invalid(e) => write!(f, "parsed records form an invalid log: {e}"),
        }
    }
}

impl std::error::Error for ParseLogError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseLogError::Invalid(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LogError> for ParseLogError {
    fn from(e: LogError) -> Self {
        ParseLogError::Invalid(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_are_lowercase_and_informative() {
        let msgs = [
            LogError::Empty.to_string(),
            LogError::DuplicateLsn(Lsn(3)).to_string(),
            LogError::LsnGap {
                expected: Lsn(2),
                found: Lsn(5),
            }
            .to_string(),
            LogError::StartMismatch {
                lsn: Lsn(1),
                wid: Wid(1),
            }
            .to_string(),
            LogError::NonConsecutiveIsLsn {
                wid: Wid(2),
                expected: IsLsn(3),
                found: IsLsn(5),
            }
            .to_string(),
            LogError::RecordAfterEnd {
                wid: Wid(1),
                lsn: Lsn(9),
            }
            .to_string(),
            LogError::UnknownInstance(Wid(4)).to_string(),
            LogError::InstanceClosed(Wid(4)).to_string(),
        ];
        for m in msgs {
            assert!(!m.is_empty());
            assert!(m.chars().next().unwrap().is_lowercase() || m.starts_with("log"));
            assert!(!m.ends_with('.'));
        }
    }

    #[test]
    fn parse_error_wraps_log_error_as_source() {
        use std::error::Error;
        let e: ParseLogError = LogError::Empty.into();
        assert!(e.source().is_some());
        assert!(e.to_string().contains("invalid log"));
    }

    #[test]
    fn errors_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<LogError>();
        assert_send_sync::<ParseLogError>();
    }
}
